"""Unit tests for the CPU resource and polling process model."""

from repro.sim import Engine, Process, ProcessConfig, us
from repro.sim.process import Cpu


class Recorder(Process):
    """Process that records its poll times."""

    def __init__(self, engine, node_id=0, config=None):
        super().__init__(engine, node_id, config)
        self.polls = []

    def on_poll(self):
        self.polls.append(self.engine.now)


def test_cpu_charges_serial_time():
    e = Engine()
    cpu = Cpu(e, "test")
    done = []
    cpu.submit(100, done.append, "a")
    cpu.submit(50, done.append, "b")
    e.run()
    assert done == ["a", "b"]
    assert cpu.busy_until == 150  # serialized, not parallel


def test_cpu_speed_factor_scales_cost():
    e = Engine()
    cpu = Cpu(e, "slow", speed_factor=3.0)
    cpu.submit(100, lambda: None)
    e.run()
    assert e.now == 300


def test_cpu_stall_pushes_work_back():
    e = Engine()
    cpu = Cpu(e, "test")
    done = []
    cpu.stall(1000)
    cpu.submit(10, done.append, "late")
    e.run()
    assert e.now == 1010


def test_halted_cpu_drops_work():
    e = Engine()
    cpu = Cpu(e, "test")
    done = []
    cpu.submit(10, done.append, "x")
    cpu.halt()
    e.run()
    assert done == []


def test_process_polls_repeatedly():
    e = Engine(seed=1)
    p = Recorder(e, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0))
    p.start()
    e.run(until=us(1))
    assert len(p.polls) >= 8
    gaps = [b - a for a, b in zip(p.polls, p.polls[1:])]
    assert all(g >= 100 for g in gaps)


def test_poll_jitter_varies_gaps():
    e = Engine(seed=3)
    p = Recorder(e, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=100))
    p.start()
    e.run(until=us(5))
    gaps = {b - a for a, b in zip(p.polls, p.polls[1:])}
    assert len(gaps) > 1  # jitter actually applied


def test_crash_stops_polling():
    e = Engine(seed=1)
    p = Recorder(e)
    p.start()
    e.schedule(us(1), p.crash)
    e.run(until=us(5))
    assert p.crashed
    assert all(t <= us(1) for t in p.polls)


def test_start_is_idempotent():
    e = Engine(seed=1)
    p = Recorder(e, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0))
    p.start()
    p.start()
    e.run(until=500)
    # One poll loop, not two: strictly increasing poll times.
    assert p.polls == sorted(set(p.polls))


def test_deschedule_delays_polls():
    e = Engine(seed=1)
    p = Recorder(e, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0))
    p.start()
    e.schedule(200, p.deschedule, us(10))
    e.run(until=us(15))
    # No polls land inside the descheduled window.
    window = [t for t in p.polls if 300 < t <= us(10)]
    assert window == []


def test_automatic_deschedules_fire():
    e = Engine(seed=2)
    cfg = ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0,
                        deschedule_mean_interval_ns=us(5),
                        deschedule_duration_ns=us(2))
    p = Recorder(e, config=cfg)
    p.start()
    e.run(until=us(100))
    assert e.trace.get("process.deschedules") > 0


def test_wake_triggers_extra_poll():
    e = Engine(seed=1)
    p = Recorder(e, config=ProcessConfig(poll_interval_ns=us(50), poll_jitter_ns=0))
    p.start()
    e.schedule(100, p.wake, 0)
    e.run(until=us(10))
    assert any(t < us(1) for t in p.polls)


def test_slow_process_polls_slower():
    e = Engine(seed=1)
    fast = Recorder(e, node_id=0, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0))
    slow = Recorder(e, node_id=1, config=ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0,
                                                       speed_factor=10.0))
    fast.start()
    slow.start()
    e.run(until=us(10))
    assert len(fast.polls) > 5 * len(slow.polls)
