"""Unit tests for compiled event chains (macro-event fusion).

The property suite (tests/properties/test_chain_equivalence.py) pins
whole-system bit-identity; these tests pin the engine-level contract:
validation, cancellation, stop(), budget/step interaction, seq
allocation modes and the interleaving rule.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine


def rec(log, tag):
    def fn(*args):
        log.append((tag, args))
    return fn


# ------------------------------------------------------------- validation


def test_empty_chain_is_none():
    e = Engine(seed=1)
    assert e.schedule_chain([]) is None
    assert e.pending == 0


def test_zero_offsets_run_at_now():
    e = Engine(seed=1)
    log = []
    e.schedule_chain([(0, rec(log, "a"), ()), (0, rec(log, "b"), ())])
    e.run()
    assert log == [("a", ()), ("b", ())]
    assert e.now == 0


def test_negative_offset_raises():
    e = Engine(seed=1)
    with pytest.raises(ValueError, match="negative chain offset"):
        e.schedule_chain([(-1, rec([], "a"), ())])


def test_non_integral_offset_raises():
    e = Engine(seed=1)
    with pytest.raises(ValueError, match="non-integral"):
        e.schedule_chain([(1.5, rec([], "a"), ())])


def test_integral_float_offset_coerces():
    e = Engine(seed=1)
    log = []
    e.schedule_chain([(2.0, rec(log, "a"), ())])
    e.run()
    assert log == [("a", ())] and e.now == 2


def test_decreasing_offsets_raise():
    e = Engine(seed=1)
    with pytest.raises(ValueError, match="non-decreasing"):
        e.schedule_chain([(5, rec([], "a"), ()), (3, rec([], "b"), ())])


# ----------------------------------------------------------- cancellation


def test_cancel_before_any_step():
    e = Engine(seed=1)
    log = []
    ch = e.schedule_chain([(1, rec(log, "a"), ()), (2, rec(log, "b"), ())])
    ch.cancel()
    e.run()
    assert log == []


def test_cancel_mid_chain_from_inside_a_step():
    e = Engine(seed=1)
    log = []
    holder = {}

    def first():
        log.append("a")
        holder["ch"].cancel()

    holder["ch"] = e.schedule_chain([(1, first, ()), (2, rec(log, "b"), ())])
    e.run()
    assert log == ["a"]


def test_cancel_from_external_event_between_steps():
    e = Engine(seed=1)
    log = []
    ch = e.schedule_chain([(1, rec(log, "a"), ()), (5, rec(log, "b"), ())])
    e.schedule_at(3, ch.cancel)
    e.run()
    assert log == [("a", ())]


def test_cancel_is_idempotent():
    e = Engine(seed=1)
    ch = e.schedule_chain([(1, rec([], "a"), ())])
    ch.cancel()
    ch.cancel()
    e.run()


def test_fallback_handle_cancels_when_fusion_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_CHAIN", "0")
    e = Engine(seed=1)
    assert not e.chain_enabled
    log = []
    ch = e.schedule_chain([(1, rec(log, "a"), ()), (2, rec(log, "b"), ())])
    ch.cancel()
    e.run()
    assert log == []


# ------------------------------------------------- stop / budget / step


def test_stop_mid_chain_halts_after_current_step():
    """Engine.stop() from inside a chain step must end run() right
    there, deterministically, with the remaining steps intact."""
    e = Engine(seed=1)
    log = []

    def stopper():
        log.append("a")
        e.stop()

    e.schedule_chain([(1, stopper, ()), (2, rec(log, "b"), ())])
    executed = e.run()
    assert executed == 1
    assert log == ["a"]
    assert e.now == 1
    # The tail is still scheduled: resuming runs it.
    e.run()
    assert log == ["a", ("b", ())]
    assert e.now == 2


def test_step_executes_one_chain_step_at_a_time():
    e = Engine(seed=1)
    log = []
    e.schedule_chain([(1, rec(log, "a"), ()), (2, rec(log, "b"), ()),
                      (3, rec(log, "c"), ())])
    assert e.step() and log == [("a", ())]
    assert e.step() and log == [("a", ()), ("b", ())]
    assert e.step() and log == [("a", ()), ("b", ()), ("c", ())]
    assert not e.step()


def test_events_executed_counts_each_step():
    e = Engine(seed=1)
    e.schedule_chain([(1, rec([], "a"), ()), (2, rec([], "b"), ())])
    e.run()
    assert e.events_executed == 2


def test_chain_yields_to_earlier_interleaved_event():
    e = Engine(seed=1)
    log = []
    e.schedule_chain([(1, rec(log, "a"), ()), (10, rec(log, "c"), ())])
    e.schedule_at(5, rec(log, "b"))
    e.run()
    assert [t for t, _ in log] == ["a", "b", "c"]


def test_chain_vs_schedule_at_seq_tiebreak_identical():
    """A chain scheduled before a same-timestamp event keeps the seq
    order N schedule_at calls would have produced."""
    def run(fused):
        import os
        prior = os.environ.get("REPRO_CHAIN")
        os.environ["REPRO_CHAIN"] = "1" if fused else "0"
        try:
            e = Engine(seed=1)
            log = []
            e.schedule_chain([(5, rec(log, "chain0"), ()),
                              (7, rec(log, "chain1"), ())])
            e.schedule_at(7, rec(log, "later"))
            e.run()
            return [t for t, _ in log]
        finally:
            if prior is None:
                os.environ.pop("REPRO_CHAIN", None)
            else:
                os.environ["REPRO_CHAIN"] = prior

    assert run(True) == run(False) == ["chain0", "chain1", "later"]


def test_dynamic_chain_draws_seqs_from_live_counter():
    e = Engine(seed=1)
    log = []

    def mid():
        # A same-time event allocated *during* the step must sort before
        # the next step, exactly as a self-rescheduling callback's own
        # schedule call would order them.
        e.schedule_at(e.now, rec(log, "inner"))
        log.append(("mid", ()))

    e.schedule_chain([(1, mid, ()), (1, rec(log, "next"), ())], dynamic=True)
    e.run()
    assert [t for t, _ in log] == ["mid", "inner", "next"]


# --------------------------------------------- schedule coercion helpers


def test_schedule_and_schedule_at_share_coercion_rules():
    e = Engine(seed=1)
    with pytest.raises(ValueError, match="non-integral"):
        e.schedule(1.5, rec([], "a"))
    with pytest.raises(ValueError, match="non-integral"):
        e.schedule_at(1.5, rec([], "a"))
    # Integral floats coerce identically on both paths.
    ev1 = e.schedule(2.0, rec([], "a"))
    ev2 = e.schedule_at(2.0, rec([], "b"))
    assert ev1.time == ev2.time == 2
