"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, us, ms, sec


def test_time_helpers_convert_to_ns():
    assert us(1) == 1_000
    assert ms(1) == 1_000_000
    assert sec(1) == 1_000_000_000
    assert us(2.5) == 2_500


def test_events_run_in_time_order():
    e = Engine()
    order = []
    e.schedule(30, order.append, "c")
    e.schedule(10, order.append, "a")
    e.schedule(20, order.append, "b")
    e.run()
    assert order == ["a", "b", "c"]
    assert e.now == 30


def test_ties_break_by_schedule_order():
    e = Engine()
    order = []
    for tag in ("first", "second", "third"):
        e.schedule(5, order.append, tag)
    e.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    e = Engine()
    seen = []
    e.schedule_at(100, lambda: seen.append(e.now))
    e.run()
    assert seen == [100]


def test_cannot_schedule_in_past():
    e = Engine()
    e.schedule(10, lambda: None)
    e.run()
    with pytest.raises(ValueError):
        e.schedule_at(5, lambda: None)
    with pytest.raises(ValueError):
        e.schedule(-1, lambda: None)


def test_cancelled_events_do_not_fire():
    e = Engine()
    seen = []
    ev = e.schedule(10, seen.append, "x")
    e.schedule(5, ev.cancel)
    e.run()
    assert seen == []


def test_run_until_advances_clock_even_without_events():
    e = Engine()
    e.schedule(10, lambda: None)
    e.run(until=500)
    assert e.now == 500


def test_run_until_does_not_execute_later_events():
    e = Engine()
    seen = []
    e.schedule(10, seen.append, "early")
    e.schedule(100, seen.append, "late")
    e.run(until=50)
    assert seen == ["early"]
    e.run()
    assert seen == ["early", "late"]


def test_events_scheduled_during_run_execute():
    e = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            e.schedule(10, chain, n + 1)

    e.schedule(0, chain, 0)
    e.run()
    assert seen == [0, 1, 2, 3]


def test_max_events_bound():
    e = Engine()
    seen = []
    for i in range(10):
        e.schedule(i + 1, seen.append, i)
    executed = e.run(max_events=4)
    assert executed == 4
    assert seen == [0, 1, 2, 3]


def test_stop_halts_run():
    e = Engine()
    seen = []
    e.schedule(1, seen.append, "a")
    e.schedule(2, e.stop)
    e.schedule(3, seen.append, "b")
    e.run()
    assert seen == ["a"]
    e.run()
    assert seen == ["a", "b"]


def test_step_executes_one_event():
    e = Engine()
    seen = []
    e.schedule(1, seen.append, 1)
    e.schedule(2, seen.append, 2)
    assert e.step()
    assert seen == [1]
    assert e.step()
    assert not e.step()


def test_rng_streams_are_deterministic_and_independent():
    a1 = Engine(seed=5).rng("alpha").random()
    a2 = Engine(seed=5).rng("alpha").random()
    b = Engine(seed=5).rng("beta").random()
    c = Engine(seed=6).rng("alpha").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_rng_stream_is_cached_per_engine():
    e = Engine(seed=1)
    assert e.rng("s") is e.rng("s")


def test_idle_reflects_live_events():
    e = Engine()
    assert e.idle()
    ev = e.schedule(10, lambda: None)
    assert not e.idle()
    ev.cancel()
    assert e.idle()


def test_idle_counter_survives_cancel_after_fire():
    # Cancelling an event that already executed must not corrupt the
    # live-event accounting (Process.crash cancels poll events that may
    # have fired already).
    e = Engine()
    ev = e.schedule(5, lambda: None)
    e.schedule(10, lambda: None)
    e.run(until=7)
    ev.cancel()           # already popped: a no-op for the counter
    assert not e.idle()   # the t=10 event is still live
    e.run()
    assert e.idle()


def test_cancelled_heap_compacts_lazily():
    e = Engine()
    events = [e.schedule(1000 + i, lambda: None) for i in range(200)]
    keeper_ran = []
    e.schedule(2000, lambda: keeper_ran.append(True))
    assert e.pending == 201
    for ev in events:
        ev.cancel()
    # More than half the heap was dead weight: it must have compacted.
    assert e.pending < 201
    assert e.live_pending == 1
    assert not e.idle()
    e.run()
    assert keeper_ran == [True]
    assert e.idle()


def test_compaction_during_run_keeps_heap_alias_valid():
    # Regression: _compact() must mutate the heap in place.  If it rebinds
    # self._heap instead, run()'s local alias goes stale — events scheduled
    # after compaction never fire in that run, live-event accounting drifts,
    # and already-executed events fire again on the next run().
    e = Engine()
    fired = []
    victims = []

    def canceller():
        # Kill >half of a 200+-event heap from inside a running event,
        # forcing _compact() mid-run...
        for ev in victims:
            ev.cancel()
        # ...then schedule into the (possibly new) heap.
        e.schedule(50, lambda: fired.append("post"))

    e.schedule(1, lambda: fired.append("early"))
    e.schedule(2, canceller)
    victims.extend(
        e.schedule(1000 + i, lambda: fired.append("victim")) for i in range(200)
    )
    e.schedule(3000, lambda: fired.append("keeper"))

    e.run()
    assert fired == ["early", "post", "keeper"]
    assert e.idle()
    assert e.live_pending == 0
    # A second run must be a no-op: nothing replays from a stale heap.
    assert e.run() == 0
    assert fired == ["early", "post", "keeper"]


def test_double_cancel_counts_once():
    e = Engine()
    ev = e.schedule(10, lambda: None)
    e.schedule(20, lambda: None)
    ev.cancel()
    ev.cancel()
    assert e.live_pending == 1
    e.run()
    assert e.idle()
