"""Unit tests for the tracer."""

import math

from repro.sim import Tracer


def test_counters_accumulate():
    t = Tracer()
    t.count("x")
    t.count("x", 4)
    assert t.get("x") == 5
    assert t.get("missing") == 0


def test_samples_and_stats():
    t = Tracer()
    for v in [1.0, 2.0, 3.0, 4.0]:
        t.sample("lat", v)
    assert t.mean("lat") == 2.5
    assert t.percentile("lat", 50) == 2.0
    assert t.percentile("lat", 100) == 4.0
    assert t.series("lat") == [1.0, 2.0, 3.0, 4.0]


def test_empty_stats_are_nan():
    t = Tracer()
    assert math.isnan(t.mean("none"))
    assert math.isnan(t.percentile("none", 50))


def test_events_only_captured_when_enabled():
    off = Tracer(capture_events=False)
    off.event(1, "a")
    assert off.events == []
    on = Tracer(capture_events=True)
    on.event(1, "a", {"k": 1})
    assert on.events == [(1, "a", {"k": 1})]


def test_fingerprint_stable_and_sensitive():
    a, b = Tracer(), Tracer()
    for t in (a, b):
        t.count("c", 2)
        t.sample("s", 1.5)
    assert a.fingerprint() == b.fingerprint()
    b.count("c")
    assert a.fingerprint() != b.fingerprint()


def test_merge_folds_counters_and_samples():
    a, b = Tracer(), Tracer()
    a.count("c", 1)
    b.count("c", 2)
    b.sample("s", 9.0)
    a.merge(b)
    assert a.get("c") == 3
    assert a.series("s") == [9.0]


def test_reset_clears_everything():
    t = Tracer(capture_events=True)
    t.count("c")
    t.sample("s", 1)
    t.event(0, "e")
    t.reset()
    assert t.get("c") == 0
    assert t.series("s") == []
    assert t.events == []


def test_summary_reports_means():
    t = Tracer()
    t.sample("a", 2.0)
    t.sample("a", 4.0)
    assert t.summary()["a"] == 3.0
    assert set(t.summary(["a"])) == {"a"}
