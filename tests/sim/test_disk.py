"""Unit tests for the group-commit disk model."""

from repro.sim import Engine, us
from repro.sim.disk import Disk


def test_single_append_costs_one_fsync():
    e = Engine(seed=1)
    d = Disk(e, fsync_ns=us(100))
    done = []
    d.append(lambda: done.append(e.now))
    e.run()
    assert done == [us(100)]
    assert d.syncs == 1


def test_appends_during_sync_share_next_flush():
    e = Engine(seed=1)
    d = Disk(e, fsync_ns=us(100))
    done = []
    d.append(lambda: done.append(("a", e.now)))
    e.schedule(us(10), lambda: d.append(lambda: done.append(("b", e.now))))
    e.schedule(us(20), lambda: d.append(lambda: done.append(("c", e.now))))
    e.run()
    # a syncs alone; b and c share the second flush.
    assert done[0] == ("a", us(100))
    assert done[1] == ("b", us(200))
    assert done[2] == ("c", us(200))
    assert d.syncs == 2


def test_group_commit_bounds_sync_count():
    e = Engine(seed=1)
    d = Disk(e, fsync_ns=us(100))
    done = []
    for i in range(50):
        e.schedule(i * 1000, lambda i=i: d.append(lambda: done.append(i)))
    e.run()
    assert len(done) == 50
    assert d.syncs <= 3  # 50us of arrivals fit in the first flush window


def test_callbacks_fire_in_append_order():
    e = Engine(seed=1)
    d = Disk(e, fsync_ns=us(50))
    done = []
    for i in range(10):
        d.append(lambda i=i: done.append(i))
    e.run()
    assert done == list(range(10))


def test_queue_depth_visible():
    e = Engine(seed=1)
    d = Disk(e, fsync_ns=us(100))
    d.append(lambda: None)
    d.append(lambda: None)
    assert d.queue_depth == 1  # first is syncing, second waits
