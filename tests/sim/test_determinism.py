"""Same seed ⇒ identical simulation, different seed ⇒ (almost surely) not.

These tests run a full Acuerdo cluster — the most complex machinery in
the repo — twice and compare trace fingerprints and delivered sequences.
"""

from repro.core import AcuerdoCluster
from repro.sim import Engine, ms, us


def _run(seed: int, n: int = 3, msgs: int = 40):
    e = Engine(seed=seed)
    c = AcuerdoCluster(e, n)
    c.preseed_leader(0)
    c.start()
    latencies = []

    def feed(i=0):
        if i < msgs:
            t0 = e.now
            c.submit(("m", i), 10, lambda hdr: latencies.append(e.now - t0))
            e.schedule(us(2), feed, i + 1)

    e.schedule(us(1), feed)
    e.run(until=ms(2))
    return e.trace.fingerprint(), dict(c.deliveries.sequences), latencies


def test_same_seed_same_everything():
    f1, d1, l1 = _run(seed=11)
    f2, d2, l2 = _run(seed=11)
    assert f1 == f2
    assert d1 == d2
    assert l1 == l2


def test_different_seed_changes_timing():
    _, d1, l1 = _run(seed=11)
    _, d2, l2 = _run(seed=12)
    # Payload deliveries match (same workload) but poll jitter shifts
    # individual commit latencies.
    assert d1 == d2
    assert l1 != l2


def test_determinism_survives_failover():
    def run(seed):
        e = Engine(seed=seed)
        c = AcuerdoCluster(e, 5)
        c.start()
        e.run(until=ms(1))

        def feed(i=0):
            if i < 30:
                c.submit(("m", i), 10)
                e.schedule(us(3), feed, i + 1)

        feed()
        e.run(until=ms(2))
        ldr = c.leader_id()
        if ldr is not None:
            c.crash(ldr)
        e.run(until=ms(5))
        return e.trace.fingerprint(), c.leader_id()

    assert run(3) == run(3)
