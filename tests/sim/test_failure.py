"""Unit tests for failure injection."""

import pytest

from repro.sim import Engine, FailureInjector, Process, ProcessConfig, us


class Ticker(Process):
    def __init__(self, engine, node_id):
        super().__init__(engine, node_id,
                         ProcessConfig(poll_interval_ns=100, poll_jitter_ns=0))
        self.ticks = 0

    def on_poll(self):
        self.ticks += 1


def _cluster(e, n=3):
    procs = [Ticker(e, i) for i in range(n)]
    for p in procs:
        p.start()
    return procs


def test_crash_at_stops_node():
    e = Engine(seed=1)
    procs = _cluster(e)
    inj = FailureInjector(e, procs)
    inj.crash_at(us(5), 1)
    e.run(until=us(10))
    assert procs[1].crashed
    assert not procs[0].crashed
    assert inj.alive() == [0, 2]


def test_methods_accept_process_objects():
    """Every injector method takes either a node id or the Process."""
    e = Engine(seed=1)
    procs = _cluster(e)
    inj = FailureInjector(e, procs)
    inj.crash_at(us(5), procs[1])
    inj.slow_node(procs[2], 10.0)
    inj.deschedule_at(us(1), procs[0], us(3))
    e.run(until=us(20))
    assert procs[1].crashed
    assert inj.alive() == [0, 2]
    assert procs[0].ticks > 5 * procs[2].ticks


def test_id_and_process_forms_are_equivalent():
    e1 = Engine(seed=2)
    p1 = _cluster(e1)
    FailureInjector(e1, p1).crash_at(us(5), 1)
    e1.run(until=us(10))

    e2 = Engine(seed=2)
    p2 = _cluster(e2)
    FailureInjector(e2, p2).crash_at(us(5), p2[1])
    e2.run(until=us(10))

    assert [p.ticks for p in p1] == [p.ticks for p in p2]
    assert [p.crashed for p in p1] == [p.crashed for p in p2]


def test_unknown_node_raises():
    e = Engine(seed=1)
    inj = FailureInjector(e, _cluster(e))
    with pytest.raises(KeyError):
        inj.crash_at(10, 99)


def test_deschedule_at_pauses_node():
    e = Engine(seed=1)
    procs = _cluster(e)
    inj = FailureInjector(e, procs)
    inj.deschedule_at(us(1), 0, us(50))
    e.run(until=us(60))
    # Node 0 lost ~50us of polling relative to node 2.
    assert procs[2].ticks - procs[0].ticks > 300


def test_slow_node_scales_speed():
    e = Engine(seed=1)
    procs = _cluster(e)
    inj = FailureInjector(e, procs)
    inj.slow_node(1, 10.0)
    e.run(until=us(20))
    assert procs[0].ticks > 5 * procs[1].ticks


def test_kill_leader_every_crashes_reported_leader():
    e = Engine(seed=1)
    procs = _cluster(e, 5)
    inj = FailureInjector(e, procs)
    killed = []
    order = iter([0, 1, 2])

    def leader_of():
        alive = inj.alive()
        return alive[0] if alive else None

    inj.kill_leader_every(us(10), leader_of, on_kill=killed.append, stop_after=3)
    e.run(until=us(100))
    assert killed == [0, 1, 2]
    assert inj.alive() == [3, 4]


def test_kill_leader_handles_no_leader():
    e = Engine(seed=1)
    procs = _cluster(e, 2)
    inj = FailureInjector(e, procs)
    inj.kill_leader_every(us(10), lambda: None, stop_after=1)
    e.run(until=us(50))
    assert inj.alive() == [0, 1]


def _grouped_cluster(e, groups=2, n=2):
    procs = []
    for g in range(groups):
        with e.scoped(g):
            procs.extend(_cluster(e, n))
    return procs


def test_grouped_processes_accept_group_node_addresses():
    e = Engine(seed=1)
    procs = _grouped_cluster(e)
    inj = FailureInjector(e, procs)
    inj.crash_at(us(5), (1, 0))
    e.run(until=us(10))
    crashed = [p for p in procs if p.crashed]
    assert [(p.group, p.node_id) for p in crashed] == [(1, 0)]


def test_colliding_bare_int_raises_with_guidance():
    e = Engine(seed=1)
    inj = FailureInjector(e, _grouped_cluster(e))
    with pytest.raises(KeyError, match=r"ambiguous across groups \[0, 1\]"):
        inj.crash_at(us(5), 0)


def test_mixed_flat_and_grouped_keeps_unique_ints_working():
    e = Engine(seed=1)
    flat = _cluster(e, n=1)          # node 0, no group
    with e.scoped(0):
        grouped = _cluster(e, n=2)   # (0, 0), (0, 1)
    inj = FailureInjector(e, flat + grouped)
    # node_id 1 exists only in group 0: the bare int still resolves.
    inj.crash_at(us(5), 1)
    # node_id 0 exists both flat and grouped: ambiguous.
    with pytest.raises(KeyError, match="ambiguous"):
        inj.crash_at(us(5), 0)
    e.run(until=us(10))
    assert [p.crashed for p in grouped] == [False, True]
    assert not flat[0].crashed


def test_alive_reports_hierarchical_addresses():
    e = Engine(seed=1)
    procs = _grouped_cluster(e)
    inj = FailureInjector(e, procs)
    inj.crash_at(us(5), (0, 1))
    e.run(until=us(10))
    assert (0, 1) not in inj.alive()
    assert set(inj.alive()) == {(0, 0), (1, 0), (1, 1)}


def test_unknown_group_address_raises():
    e = Engine(seed=1)
    inj = FailureInjector(e, _grouped_cluster(e))
    with pytest.raises(KeyError, match="no process with address"):
        inj.crash_at(us(5), (7, 0))


def test_kill_leader_every_group_scopes_bare_ids():
    """`leader_of()` reporting a bare node id in a sharded deployment is
    resolved inside the given ``group=``."""
    e = Engine(seed=1)
    procs = _grouped_cluster(e)
    inj = FailureInjector(e, procs)
    killed = []
    inj.kill_leader_every(us(10), lambda: 0, group=1,
                          on_kill=killed.append, stop_after=1)
    e.run(until=us(50))
    crashed = [(p.group, p.node_id) for p in procs if p.crashed]
    assert crashed == [(1, 0)]
    assert killed == [0]


def test_kill_leader_every_ambiguous_bare_id_raises_loudly():
    """An ambiguous flat id without ``group=`` used to be swallowed,
    silently skipping every kill; now the first tick raises."""
    e = Engine(seed=1)
    inj = FailureInjector(e, _grouped_cluster(e))
    inj.kill_leader_every(us(10), lambda: 0)
    with pytest.raises(KeyError, match="ambiguous"):
        e.run(until=us(50))
    assert not any(p.crashed for p in inj.processes)


def test_kill_leader_every_accepts_hierarchical_leader_ids():
    """`leader_of()` may itself return a ``(group, node)`` address; the
    ``group=`` scope only wraps *bare* ids."""
    e = Engine(seed=1)
    procs = _grouped_cluster(e)
    inj = FailureInjector(e, procs)
    inj.kill_leader_every(us(10), lambda: (0, 1), group=1, stop_after=1)
    e.run(until=us(50))
    crashed = [(p.group, p.node_id) for p in procs if p.crashed]
    assert crashed == [(0, 1)]
