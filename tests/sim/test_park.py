"""Unit tests for poll-elision parking (doorbells, horizons, wakes)."""

import pytest

from repro.sim import Engine, Process, ProcessConfig, us


class IdleParker(Process):
    """Always-idle process: parks whenever allowed, records poll times."""

    def __init__(self, engine, node_id=0, config=None, deadline_in=None):
        super().__init__(engine, node_id, config)
        self.polls = []
        self.deadline_in = deadline_in

    def on_poll(self):
        self.polls.append(self.engine.now)

    def park_ready(self):
        return True

    def park_deadline(self):
        if self.deadline_in is None:
            return None
        return self.engine.now + self.deadline_in


def _cfg(allow_park, **kw):
    kw.setdefault("poll_interval_ns", 100)
    kw.setdefault("poll_jitter_ns", 50)
    return ProcessConfig(allow_park=allow_park, **kw)


def _run(allow_park, ring=None, until=us(50), deadline_in=None, **cfg_kw):
    e = Engine(seed=9)
    p = IdleParker(e, config=_cfg(allow_park, **cfg_kw), deadline_in=deadline_in)
    p.start()
    if ring is not None:
        at, fn = ring
        e.schedule_at(at, fn, p)
    e.run(until=until)
    return p, e


def test_doorbell_wakes_on_baseline_schedule():
    """A doorbell wake lands exactly on the tick the unparked loop would
    have polled at — same RNG stream, same jitter draws."""
    ring_at = 12_345
    baseline, _ = _run(False, ring=(ring_at, lambda p: p.doorbell(ring_at)))
    parked, _ = _run(True, ring=(ring_at, lambda p: p.doorbell(ring_at)))
    assert parked.polls[-1] in baseline.polls
    assert parked.polls[-1] == min(t for t in baseline.polls if t >= ring_at)
    # Only the first poll (pre-park) and the wake poll executed.
    assert len(parked.polls) < len(baseline.polls)


def test_doorbell_only_park_sleeps_indefinitely():
    p, e = _run(True)
    assert p.parked
    assert len(p.polls) == 1  # the poll that parked; nothing after


def test_horizon_wake_follows_deadline():
    """With a 5 us deadline the parked loop polls once per horizon, on
    ticks the unparked schedule also hits."""
    baseline, _ = _run(False, deadline_in=us(5))
    parked, _ = _run(True, deadline_in=us(5))
    assert set(parked.polls) <= set(baseline.polls)
    # One horizon wake per ~5 us, not one poll per ~125 ns.
    assert 5 <= len(parked.polls) <= 15
    gaps = [b - a for a, b in zip(parked.polls, parked.polls[1:])]
    assert all(g >= us(5) for g in gaps)


def test_crash_while_parked_stays_silent():
    def crash_then_ring(p):
        p.crash()
        p.doorbell(p.engine.now)
    p, _ = _run(True, ring=(us(10), crash_then_ring), until=us(30))
    assert p.crashed
    assert all(t <= us(10) for t in p.polls)


def test_request_poll_wakes_parked_loop():
    ring_at = 7_777
    baseline, _ = _run(False, ring=(ring_at, lambda p: p.request_poll()))
    parked, _ = _run(True, ring=(ring_at, lambda p: p.request_poll()))
    assert parked.polls[-1] == min(t for t in baseline.polls if t >= ring_at)


def test_slow_node_wakes_on_stretched_schedule():
    """speed_factor stretches the poll gaps; the parked wake must land
    on the stretched baseline schedule, not the nominal one."""
    ring_at = 23_456
    kw = dict(speed_factor=10.0)
    baseline, _ = _run(False, ring=(ring_at, lambda p: p.doorbell(ring_at)), **kw)
    parked, _ = _run(True, ring=(ring_at, lambda p: p.doorbell(ring_at)), **kw)
    assert parked.polls[-1] == min(t for t in baseline.polls if t >= ring_at)


def test_out_of_poll_cpu_charge_rederives_schedule():
    """Out-of-poll work that advances busy_until must ring request_poll;
    the woken loop then reproduces the unparked busy_until + 1 fallback
    schedule exactly, and re-parks once the CPU drains."""
    def stall_and_ring(p):
        p.cpu.stall(us(5))
        p.request_poll()

    baseline, _ = _run(False, ring=(1_000, stall_and_ring), until=us(3))
    parked, eng = _run(True, ring=(1_000, stall_and_ring), until=us(3))
    assert not parked.parked          # busy CPU: still real-polling
    assert [t for t in baseline.polls if t >= 1_000] == \
        [t for t in parked.polls if t >= 1_000]
    eng.run(until=us(20))
    assert parked.parked              # CPU drained, loop parked again


def test_deschedules_disable_parking():
    e = Engine(seed=9)
    cfg = ProcessConfig(poll_interval_ns=100, poll_jitter_ns=50,
                        deschedule_mean_interval_ns=us(5), allow_park=True)
    p = IdleParker(e, config=cfg)
    p.start()
    e.run(until=us(20))
    assert not p.parked  # deschedule draws share the RNG stream


def test_allow_park_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_PARK", "0")
    p, _ = _run(True)
    assert p.parked
    monkeypatch.setenv("REPRO_PARK", "1")
    p, _ = _run(None)
    assert p.parked
    monkeypatch.setenv("REPRO_PARK", "0")
    p, _ = _run(None)
    assert not p.parked


def test_parking_preserves_rng_stream_for_later_draws():
    """After a wake, subsequent real polls continue the identical jitter
    sequence: every parked-run poll time appears in the baseline run."""
    ring_at = 3_333

    class WakesThenRuns(IdleParker):
        def park_ready(self):
            # Park only before the doorbell; afterwards poll for real.
            return self.engine.now < ring_at

    def run(allow):
        e = Engine(seed=9)
        p = WakesThenRuns(e, config=_cfg(allow))
        p.start()
        e.schedule_at(ring_at, p.doorbell, ring_at)
        e.run(until=us(10))
        return p.polls

    baseline, parked = run(False), run(True)
    assert [t for t in baseline if t >= ring_at] == \
        [t for t in parked if t >= ring_at]


# --------------------------------------------------------------- engine side


def test_schedule_rejects_fractional_timestamps():
    e = Engine()
    with pytest.raises(ValueError):
        e.schedule_at(1.5, lambda: None)
    with pytest.raises(ValueError):
        e.schedule(2.7, lambda: None)
    # Integral floats are accepted and coerced.
    ev = e.schedule_at(3.0, lambda: None)
    assert ev.time == 3


def test_events_executed_counts_lifetime():
    e = Engine()
    for i in range(5):
        e.schedule(i + 1, lambda: None)
    e.run()
    assert e.events_executed == 5
    e.schedule(1, lambda: None)
    assert e.step() is True
    assert e.events_executed == 6
    assert e.step() is False
    assert e.events_executed == 6
