"""Tests for generic state-machine replication."""

import pytest

from repro.apps.smr import ReplicatedStateMachine, StateMachine
from repro.core import AcuerdoCluster
from repro.protocols.zab import ZabCluster
from repro.sim import Engine, ms


class Counter(StateMachine):
    """Toy deterministic machine: sums integer ops."""

    def __init__(self):
        self.total = 0
        self.count = 0

    def apply(self, op):
        self.total += op
        self.count += 1

    def digest(self):
        return (self.count, self.total)


def test_all_replicas_apply_same_stream():
    e = Engine(seed=1)
    system = AcuerdoCluster(e, 3)
    system.preseed_leader(0)
    system.start()
    smr = ReplicatedStateMachine(system, Counter)
    for i in range(25):
        smr.submit(i, 8)
    e.run(until=ms(2))
    for nid in range(3):
        assert smr.replica(nid).digest() == (25, sum(range(25)))
    smr.assert_replicas_consistent()


def test_consistency_check_detects_divergence():
    e = Engine(seed=1)
    system = AcuerdoCluster(e, 3)
    system.preseed_leader(0)
    system.start()
    smr = ReplicatedStateMachine(system, Counter)
    for i in range(10):
        smr.submit(i, 8)
    e.run(until=ms(2))
    smr.replica(1).total += 999  # corrupt one replica
    with pytest.raises(AssertionError):
        smr.assert_replicas_consistent()


def test_lagging_replica_allowed_to_trail_not_diverge():
    e = Engine(seed=1)
    system = AcuerdoCluster(e, 3)
    system.preseed_leader(0)
    system.start()
    smr = ReplicatedStateMachine(system, Counter)
    system.nodes[2].deschedule(ms(10))
    for i in range(10):
        smr.submit(i, 8)
    e.run(until=ms(2))
    assert smr.applied_counts[2] < smr.applied_counts[0]
    smr.assert_replicas_consistent()  # trailing is fine
    with pytest.raises(AssertionError):
        smr.assert_replicas_consistent(up_to_min=False)


def test_smr_works_over_tcp_baseline():
    e = Engine(seed=1)
    system = ZabCluster(e, 3)
    system.start()
    e.run(until=ms(5))
    smr = ReplicatedStateMachine(system, Counter)
    for i in range(10):
        smr.submit(i, 8)
    e.run(until=ms(30))
    assert smr.replica(system.leader_id()).count == 10
    smr.assert_replicas_consistent()
