"""Tests for the replicated hash table (§4.3)."""

import pytest

from repro.apps.hashtable import HashTableStateMachine, KvOp, ReplicatedHashTable
from repro.core import AcuerdoCluster
from repro.sim import Engine, ms


def _table(n=3, seed=1):
    e = Engine(seed=seed)
    system = AcuerdoCluster(e, n)
    system.preseed_leader(0)
    system.start()
    return e, system, ReplicatedHashTable(system)


def test_state_machine_applies_ops():
    sm = HashTableStateMachine()
    sm.apply(KvOp("create", "k1", "v1"))
    sm.apply(KvOp("set", "k1", "v2"))
    assert sm.table == {"k1": "v2"}
    sm.apply(KvOp("delete", "k1"))
    assert sm.table == {}
    assert sm.ops_applied == 3


def test_state_machine_rejects_unknown_kind():
    sm = HashTableStateMachine()
    with pytest.raises(ValueError):
        sm.apply(KvOp("increment", "k"))


def test_digest_tracks_history_not_just_state():
    a, b = HashTableStateMachine(), HashTableStateMachine()
    a.apply(KvOp("set", "k", "v"))
    b.apply(KvOp("create", "k", "v"))
    assert a.table == b.table
    assert a.digest() != b.digest()  # different op streams


def test_updates_replicate_to_all_nodes():
    e, system, table = _table()
    acked = []
    table.create("alpha", "1", on_commit=lambda x: acked.append("alpha"))
    table.set("beta", "2", on_commit=lambda x: acked.append("beta"))
    e.run(until=ms(1))
    assert acked == ["alpha", "beta"]
    for nid in range(3):
        assert table.get(nid, "alpha") == "1"
        assert table.get(nid, "beta") == "2"
    table.assert_replicas_consistent()


def test_gets_bypass_broadcast():
    e, system, table = _table()
    table.set("k", "v")
    e.run(until=ms(1))
    sent_before = system.engine.trace.get("acuerdo.broadcast")
    for _ in range(100):
        table.get(1, "k")
    assert system.engine.trace.get("acuerdo.broadcast") == sent_before


def test_delete_replicates():
    e, system, table = _table()
    table.create("k", "v")
    table.delete("k")
    e.run(until=ms(1))
    for nid in range(3):
        assert table.get(nid, "k") is None


def test_replicas_consistent_after_failover():
    e, system, table = _table(n=5, seed=2)
    for i in range(20):
        table.set(f"k{i % 5}", str(i))
    e.run(until=ms(2))
    system.crash(system.leader_id())
    e.run(until=ms(5))
    for i in range(20, 30):
        table.set(f"k{i % 5}", str(i))
    e.run(until=ms(8))
    table.assert_replicas_consistent()


def test_op_wire_size():
    assert KvOp("set", "key", "value").wire_size() == 8 + 3 + 5
    assert KvOp("delete", "key").wire_size() == 8 + 3


def test_foreign_payloads_ignored():
    sm = HashTableStateMachine()
    assert sm.apply(("not", "a", "kvop")) is None
    assert sm.ops_applied == 0
