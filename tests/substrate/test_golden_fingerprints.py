"""Golden-trace determinism regression across the substrate refactor.

The fingerprints below were captured from the pre-substrate tree (the
seed commit) under a fixed workload: seed 7, three replicas, 24 client
messages of 64 bytes submitted every 20 µs, 30 ms horizon.  The
substrate layer is pure refactoring — same RNG stream names, same cost
arithmetic, same event ordering — so every protocol must still produce
these exact traces.  A mismatch means the transport rework changed
simulated behaviour, not just code structure.
"""

from __future__ import annotations

import pytest

from repro.harness.factory import EXTENSION_SYSTEMS, SYSTEMS, build_from_spec, settle
from repro.harness.runspec import RunSpec
from repro.sim.engine import Engine, ms, us

GOLDEN_FINGERPRINTS = {
    'acuerdo':
        (((('acuerdo.accept', 72), ('acuerdo.broadcast', 24), ('acuerdo.commit', 72), ('acuerdo.gc_trimmed', 69)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'derecho-leader':
        (((('derecho.broadcast', 24), ('derecho.deliver', 72)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'derecho-all':
        (((('derecho.broadcast', 24), ('derecho.deliver', 216), ('derecho.null_send', 48)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'apus':
        (((('apus.batch_commit', 17), ('apus.batch_send', 17)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'libpaxos':
        (((('paxos.deliver', 72), ('paxos.propose', 24)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'zookeeper':
        (((('zab.broadcast_open', 1), ('zab.deliver', 72), ('zab.elected', 1), ('zab.propose', 24), ('zab.sync', 2), ('zab.sync_sent', 1)), (), 0), ((0, 24), (1, 24), (2, 24)), 2),
    'etcd':
        (((('raft.apply', 9), ('raft.elected', 2), ('raft.elections_started', 2)), (), 0), ((0, 1), (1, 1), (2, 1)), 2),
    'dare':
        (((('dare.elected', 88), ('dare.election_rounds', 87)), (), 0), ((0, 24), (1, 24), (2, 24)), 2),
    'mu':
        (((), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'dolev':
        (((('dolev.deliver', 72), ('dolev.relay', 48), ('dolev.send', 24)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
    'bracha':
        (((('bracha.deliver', 72), ('bracha.send', 24)), (), 0), ((0, 24), (1, 24), (2, 24)), 0),
}


def run_protocol(name, n=3, seed=7, messages=24):
    """The exact workload the goldens were captured under."""
    engine = Engine(seed=seed)
    system = build_from_spec(RunSpec(system=name, n=n), engine)
    settle(system)
    state = {"submitted": 0}

    def pump():
        if state["submitted"] < messages:
            if system.submit(("m", state["submitted"]), 64):
                state["submitted"] += 1
            engine.schedule(us(20), pump)

    engine.schedule(0, pump)
    engine.run(until=engine.now + ms(30))
    delivered = tuple(sorted(system.deliveries.counts.items()))
    return (engine.trace.fingerprint(), delivered, system.leader_id())


def test_goldens_cover_every_system():
    assert set(GOLDEN_FINGERPRINTS) == set(SYSTEMS) | set(EXTENSION_SYSTEMS)


@pytest.mark.parametrize("name", sorted(GOLDEN_FINGERPRINTS))
def test_trace_matches_pre_refactor_golden(name):
    assert run_protocol(name) == GOLDEN_FINGERPRINTS[name]
