"""Cross-substrate conformance: every backend honours the same contract.

Each test runs against BOTH the RDMA and TCP backends through the
uniform :mod:`repro.substrate` surface only — attach/send/drain,
``set_partition``/``heal_partition``, the ``CostModel`` accessors and
the ``substrate.<backend>.*`` counter namespace.  A future backend that
passes this suite can host any protocol in the repo without protocol
changes; a backend-specific behaviour that matters (e.g. who pays
receive CPU) is asserted through the cost model, not hard-coded.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, ms
from repro.sim.process import Process
from repro.substrate import RdmaParams, TcpParams, build_substrate

BACKEND_PARAMS = {
    "rdma": RdmaParams,
    "tcp": TcpParams,
}

CANONICAL_COUNTERS = ("tx_bytes", "tx_msgs", "rx_msgs", "retransmits",
                      "partition_drop")


def make_cluster(backend, engine, n=3, params=None):
    """A substrate with ``n`` attached (non-polling) processes."""
    sub = build_substrate(backend, engine, node_ids=range(n), params=params)
    procs = [Process(engine, i, name=f"{backend}{i}") for i in range(n)]
    eps = [sub.attach(p) for p in procs]
    return sub, procs, eps


@pytest.fixture(params=sorted(BACKEND_PARAMS))
def backend(request):
    return request.param


# ---------------------------------------------------------------- ordering

def test_fifo_order(backend):
    engine = Engine(seed=3)
    sub, _procs, eps = make_cluster(backend, engine)
    for i in range(50):
        sub.send(0, 1, ("msg", i), 64)
    engine.run(until=ms(50))
    got = eps[1].drain()
    assert got == [(0, ("msg", i)) for i in range(50)]


def test_fifo_order_under_loss(backend):
    # Loss appears as delay (go-back-N / RTO) and must never reorder the
    # stream — the guarantee Zab and the ring buffers both lean on.
    engine = Engine(seed=4)
    params = BACKEND_PARAMS[backend](loss_prob=0.4)
    sub, _procs, eps = make_cluster(backend, engine, params=params)
    for i in range(50):
        sub.send(0, 1, ("msg", i), 64)
    engine.run(until=ms(200))
    got = eps[1].drain()
    assert got == [(0, ("msg", i)) for i in range(50)]


# ------------------------------------------------------------ loss-as-delay

def test_loss_is_delay_not_drop(backend):
    def first_arrival(loss_prob):
        engine = Engine(seed=5)
        params = BACKEND_PARAMS[backend](loss_prob=loss_prob)
        sub, _procs, eps = make_cluster(backend, engine, params=params)
        for i in range(10):
            sub.send(0, 1, i, 64)
        while not eps[1].inbox and engine.live_pending:
            engine.step()
        arrival = engine.now
        engine.run(until=ms(500))
        return arrival, len(eps[1].drain())

    clean_arrival, clean_count = first_arrival(0.0)
    lossy_arrival, lossy_count = first_arrival(1.0)
    assert clean_count == lossy_count == 10      # nothing is ever dropped
    delay = BACKEND_PARAMS[backend]().loss_delay_ns
    assert lossy_arrival >= clean_arrival + delay


# --------------------------------------------------------------- partitions

def test_partition_drops_and_heals(backend):
    engine = Engine(seed=6)
    sub, _procs, eps = make_cluster(backend, engine)
    sub.set_partition([0], [1, 2])
    sub.send(0, 1, "across", 32)     # crosses the cut: dropped
    sub.send(1, 2, "within", 32)     # same side: delivered
    engine.run(until=ms(10))
    assert eps[1].drain() == []
    assert eps[2].drain() == [(1, "within")]
    assert sub.counters()[f"substrate.{backend}.partition_drop"] == 1

    sub.heal_partition()
    sub.send(0, 1, "healed", 32)
    engine.run(until=ms(20))
    assert eps[1].drain() == [(0, "healed")]
    assert sub.counters()[f"substrate.{backend}.partition_drop"] == 1


def test_unnamed_nodes_are_isolated(backend):
    engine = Engine(seed=7)
    sub, _procs, eps = make_cluster(backend, engine)
    sub.set_partition([1, 2])        # node 0 not named anywhere
    sub.send(0, 1, "from-isolated", 32)
    sub.send(1, 0, "to-isolated", 32)
    engine.run(until=ms(10))
    assert eps[0].drain() == []
    assert eps[1].drain() == []


# ------------------------------------------------------------ cost charging

def test_send_charges_sender_cpu(backend):
    engine = Engine(seed=8)
    sub, procs, _eps = make_cluster(backend, engine)
    params = sub.params
    before = procs[0].cpu.busy_until
    sub.send(0, 1, "x", 64)
    assert procs[0].cpu.busy_until == max(before, engine.now) + params.send_cpu_ns


def test_drain_charges_receiver_cpu_per_cost_model(backend):
    # TCP pays kernel CPU per message picked up; one-sided RDMA pays
    # nothing — the substrate-shape difference the paper builds on.
    engine = Engine(seed=9)
    sub, procs, eps = make_cluster(backend, engine)
    for i in range(8):
        sub.send(0, 1, i, 64)
    engine.run(until=ms(10))
    before = procs[1].cpu.busy_until
    got = eps[1].drain()
    assert len(got) == 8
    recv = sub.params.recv_cpu_ns
    if recv == 0:
        assert procs[1].cpu.busy_until == before
    else:
        assert procs[1].cpu.busy_until == max(before, engine.now) + 8 * recv


def test_tx_accounting_matches_cost_model(backend):
    engine = Engine(seed=10)
    sub, _procs, _eps = make_cluster(backend, engine)
    sizes = [10, 64, 1_000]
    for sz in sizes:
        sub.send(0, 1, "p", sz)
    engine.run(until=ms(10))
    c = sub.counters()
    assert c[f"substrate.{backend}.tx_msgs"] == len(sizes)
    assert c[f"substrate.{backend}.tx_bytes"] == sum(
        sub.params.wire_bytes(sz) for sz in sizes)
    assert sub.total_tx_bytes() == c[f"substrate.{backend}.tx_bytes"]


def test_retransmits_counted_under_loss(backend):
    engine = Engine(seed=11)
    params = BACKEND_PARAMS[backend](loss_prob=1.0)
    sub, _procs, _eps = make_cluster(backend, engine, params=params)
    for i in range(5):
        sub.send(0, 1, i, 64)
    engine.run(until=ms(500))
    assert sub.counters()[f"substrate.{backend}.retransmits"] == 5


# ----------------------------------------------------------- counter names

def test_counter_namespace_is_uniform(backend):
    engine = Engine(seed=12)
    sub, _procs, eps = make_cluster(backend, engine)
    sub.send(0, 1, "x", 64)
    engine.run(until=ms(10))
    eps[1].drain()
    c = sub.counters()
    prefix = f"substrate.{backend}."
    assert all(k.startswith(prefix) for k in c)
    for name in CANONICAL_COUNTERS:
        assert prefix + name in c
    assert c[prefix + "rx_msgs"] >= 1

    # publish_counters folds the snapshot into the engine's tracer so
    # post-run analyses read transport totals like protocol counters.
    sub.publish_counters()
    assert engine.trace.get(prefix + "tx_msgs") == c[prefix + "tx_msgs"]


def test_broadcast_excludes_sender(backend):
    engine = Engine(seed=13)
    sub, _procs, eps = make_cluster(backend, engine)
    sub.broadcast(0, [0, 1, 2], "hello", 32)
    engine.run(until=ms(10))
    assert eps[0].drain() == []
    assert eps[1].drain() == [(0, "hello")]
    assert eps[2].drain() == [(0, "hello")]


def test_crashed_receiver_drops_message(backend):
    engine = Engine(seed=14)
    sub, procs, eps = make_cluster(backend, engine)
    procs[1].crash()
    sub.crash_node(1)
    sub.send(0, 1, "late", 32)
    engine.run(until=ms(10))
    assert eps[1].drain() == []


# -------------------------------------------------------- shared cost maths

def test_wire_math_is_shared_across_models():
    rdma, tcp = RdmaParams(), TcpParams()
    for payload in (0, 10, 100, 10_000):
        assert rdma.wire_bytes(payload) == max(
            rdma.min_wire_bytes, payload + rdma.header_bytes)
        assert tcp.wire_bytes(payload) == payload + tcp.header_bytes
        for p in (rdma, tcp):
            assert p.tx_serialization_ns(payload) == max(
                1, int(p.wire_bytes(payload) / p.link_bandwidth_bytes_per_ns))


def test_cost_table_has_uniform_keys():
    keys = None
    for p in (RdmaParams(), TcpParams()):
        table = p.cost_table()
        if keys is None:
            keys = set(table)
        assert set(table) == keys
        assert table["send_cpu_ns"] > 0
